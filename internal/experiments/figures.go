package experiments

import (
	"fmt"
	"strings"

	"vcache/internal/core"
	"vcache/internal/report"
)

// perCUTLBSizes is the Figure 2 sweep (0 = infinite).
var perCUTLBSizes = []int{32, 64, 128, 0}

// fig2Config is the Figure 2 design point at one per-CU TLB size.
func fig2Config(size int) core.Config {
	cfg := baseline512Probed()
	if size != 32 {
		cfg = cfg.WithPerCUTLB(size)
		cfg.ProbeResidency = true
	}
	return cfg
}

func sizeLabel(n int) string {
	if n == 0 {
		return "inf"
	}
	return fmt.Sprintf("%d", n)
}

// ---------------------------------------------------------------------------
// Tables 1 and 2 (configuration listings).

// Table1 renders the simulation configuration (paper Table 1).
func Table1() string {
	cfg := core.DefaultConfig()
	t := &report.Table{
		Title:   "Table 1. Simulation configuration details.",
		Headers: []string{"Component", "Configuration"},
	}
	t.AddRow("GPU", fmt.Sprintf("%d CUs, %d lanes per CU, 700 MHz", cfg.GPU.NumCUs, cfg.GPU.Lanes))
	t.AddRow("L1 GPU Cache", fmt.Sprintf("per-CU %dKB, write-through no allocate", cfg.L1.SizeBytes/1024))
	t.AddRow("L2 GPU Cache", fmt.Sprintf("Shared %dMB, %d banks, write-back, %dB lines",
		cfg.L2.SizeBytes>>20, cfg.L2.Banks, cfg.L2.LineBytes))
	t.AddRow("TLBs", fmt.Sprintf("%d-entry per-CU TLBs (4 KB pages)", cfg.PerCUTLB.Entries))
	t.AddRow("IOMMU", fmt.Sprintf("Shared TLB (512-entry or 16K-entry), %d concurrent PTW, %dKB page-walk cache",
		cfg.IOMMU.Walker.Threads, cfg.IOMMU.Walker.PWCSizeBytes/1024))
	t.AddRow("DRAM", fmt.Sprintf("~192 GB/s (%d lines/cycle), %d-cycle latency", cfg.DRAM.LinesPerCycle, cfg.DRAM.Latency))
	t.AddRow("Interconnect", fmt.Sprintf("dance-hall GPU NoC (%d cy), CU-IOMMU %d cy, L2-IOMMU %d cy, FBT lookup %d cy",
		cfg.Lat.CUToL2, cfg.Lat.CUToIOMMU, cfg.Lat.L2ToIOMMU, cfg.IOMMU.FBTLatency))
	return t.Render()
}

// Table2 renders the evaluated MMU designs (paper Table 2).
func Table2() string {
	t := &report.Table{
		Title:   "Table 2. Evaluated MMU design configurations.",
		Headers: []string{"Design", "Per-CU TLB", "IOMMU TLB", "B/W Limit"},
	}
	t.AddRow("IDEAL MMU", "Infinite size", "Infinite size", "Infinite")
	t.AddRow("Baseline 512", "32-entry", "512-entry", "1 Access/Cycle")
	t.AddRow("Baseline 16K", "32-entry", "16K-entry", "1 Access/Cycle")
	t.AddRow("VC W/O OPT", "-", "512-entry", "1 Access/Cycle")
	t.AddRow("VC With OPT", "-", "+16K-entry FBT", "1 Access/Cycle")
	return t.Render()
}

// ---------------------------------------------------------------------------
// Figure 2: breakdown of per-CU TLB miss accesses.

// Fig2Row is one bar: a workload at one per-CU TLB size.
type Fig2Row struct {
	Workload  string
	TLBSize   int // 0 = infinite
	MissRatio float64
	// Shares of *all TLB accesses* whose miss found data in the L1, the
	// L2, or neither (the three bar segments; they sum to MissRatio).
	L1Share, L2Share, MemShare float64
	// FilteredOfMisses is (L1+L2 hits)/misses — the fraction a virtual
	// cache hierarchy would filter.
	FilteredOfMisses float64
}

// Fig2 sweeps per-CU TLB sizes over every workload.
func (s *Suite) Fig2() ([]Fig2Row, string) {
	var rows []Fig2Row
	for _, g := range s.gens {
		for _, size := range perCUTLBSizes {
			r := s.Run(g.Name, fig2Config(size))
			p := r.Probe
			acc := r.PerCUTLB.Accesses()
			row := Fig2Row{Workload: g.Name, TLBSize: size, MissRatio: r.PerCUTLBMissRatio()}
			if acc > 0 {
				row.L1Share = float64(p.L1Hit) / float64(acc)
				row.L2Share = float64(p.L2Hit) / float64(acc)
				row.MemShare = float64(p.MemAccess) / float64(acc)
			}
			row.FilteredOfMisses = p.FilteredRatio()
			rows = append(rows, row)
		}
	}
	t := &report.Table{
		Title: "Figure 2. Breakdown of per-CU TLB miss accesses by TLB size.\n" +
			"Bar: miss ratio split by where the missing access's data resides\n" +
			"(#: L1 hit, +: L2 hit, .: L2 miss / memory).",
		Headers: []string{"Workload", "TLB", "MissRatio", "L1-hit", "L2-hit", "Mem", "Filtered", "Bar (0-100%)"},
	}
	var filteredAll []float64
	for _, r := range rows {
		bar := report.StackedBar([]float64{r.L1Share, r.L2Share, r.MemShare}, []rune{'#', '+', '.'}, 1.0, 40)
		t.AddRow(r.Workload, sizeLabel(r.TLBSize), report.Pct(r.MissRatio),
			report.Pct(r.L1Share), report.Pct(r.L2Share), report.Pct(r.MemShare),
			report.Pct(r.FilteredOfMisses), bar)
		if r.TLBSize == 32 {
			filteredAll = append(filteredAll, r.FilteredOfMisses)
		}
	}
	out := t.Render()
	out += fmt.Sprintf("\nAverage fraction of 32-entry per-CU TLB misses filtered by a virtual cache hierarchy: %s (paper: ~66%%)\n",
		report.Pct(mean(filteredAll)))
	return rows, out
}

// ---------------------------------------------------------------------------
// Figure 3: IOMMU TLB access rate with unlimited IOMMU bandwidth.

// Fig3Row summarizes one workload's shared-TLB access rate.
type Fig3Row struct {
	Workload       string
	Mean, Std, Max float64
	FracAbove1     float64
}

// fig3Config is Baseline 512 with the IOMMU bandwidth limit removed.
func fig3Config() core.Config {
	cfg := baseline512Probed().WithIOMMUBandwidth(0)
	cfg.Name = "Baseline 512 (unlimited IOMMU BW)"
	return cfg
}

// Fig3 measures IOMMU TLB accesses/cycle with no bandwidth limit.
func (s *Suite) Fig3() ([]Fig3Row, string) {
	cfg := fig3Config()
	byName := map[string]Fig3Row{}
	means := map[string]float64{}
	var names []string
	for _, g := range s.gens {
		r := s.Run(g.Name, cfg)
		row := Fig3Row{Workload: g.Name, Mean: r.IOMMURate.Mean, Std: r.IOMMURate.StdDev,
			Max: r.IOMMURate.Max, FracAbove1: r.IOMMUFracAbove1}
		byName[g.Name] = row
		means[g.Name] = row.Mean
		names = append(names, g.Name)
	}
	sortByDesc(names, means)
	t := &report.Table{
		Title:   "Figure 3. IOMMU TLB accesses per cycle (32-entry per-CU TLBs, unlimited IOMMU bandwidth).",
		Headers: []string{"Workload", "Mean", "StdDev", "Max", ">1/cy windows", "Bar (mean)"},
	}
	var rows []Fig3Row
	var maxMean float64
	for _, n := range names {
		if byName[n].Mean > maxMean {
			maxMean = byName[n].Mean
		}
	}
	if maxMean == 0 {
		maxMean = 1
	}
	for _, n := range names {
		r := byName[n]
		rows = append(rows, r)
		t.AddRow(r.Workload, report.F(r.Mean), report.F(r.Std), report.F2(r.Max),
			report.Pct(r.FracAbove1), report.Bar(r.Mean, maxMean, 40))
	}
	return rows, t.Render()
}

// ---------------------------------------------------------------------------
// Figure 4: address translation overhead across all workloads.

// Fig4Data holds mean relative execution times (IDEAL = 1.0).
type Fig4Data struct {
	Baseline512 float64
	Baseline16K float64
}

// Fig4 compares the baselines against the ideal MMU over all workloads.
func (s *Suite) Fig4() (Fig4Data, string) {
	var b512, b16k []float64
	for _, g := range s.gens {
		ideal := s.Run(g.Name, core.DesignIdeal())
		b512 = append(b512, s.Run(g.Name, baseline512Probed()).RelativeTime(ideal))
		b16k = append(b16k, s.Run(g.Name, core.DesignBaseline16K()).RelativeTime(ideal))
	}
	d := Fig4Data{Baseline512: mean(b512), Baseline16K: mean(b16k)}
	t := &report.Table{
		Title:   "Figure 4. GPU address translation overheads, all workloads (relative execution time, IDEAL = 100%).",
		Headers: []string{"Design", "Relative time", "Bar"},
	}
	maxV := d.Baseline512
	if d.Baseline16K > maxV {
		maxV = d.Baseline16K
	}
	if maxV < 1 {
		maxV = 1
	}
	t.AddRow("IDEAL MMU", "100.0%", report.Bar(1, maxV, 40))
	t.AddRow("Small IOMMU TLB (512)", report.Pct(d.Baseline512), report.Bar(d.Baseline512, maxV, 40))
	t.AddRow("Large IOMMU TLB (16K)", report.Pct(d.Baseline16K), report.Bar(d.Baseline16K, maxV, 40))
	return d, t.Render()
}

// ---------------------------------------------------------------------------
// Figure 5: serialization overhead vs IOMMU TLB bandwidth.

// Fig5Row is mean relative time at one peak bandwidth.
type Fig5Row struct {
	Bandwidth    int
	RelativeTime float64
}

// fig5Bandwidths is the Figure 5 peak-bandwidth sweep.
var fig5Bandwidths = []int{1, 2, 3, 4}

// fig5Config is Baseline 16K at one IOMMU lookup bandwidth.
func fig5Config(bw int) core.Config {
	cfg := core.DesignBaseline16K().WithIOMMUBandwidth(bw)
	if bw != 1 {
		cfg.Name = fmt.Sprintf("Baseline 16K (BW %d)", bw)
	}
	return cfg
}

// Fig5 sweeps the IOMMU lookup bandwidth for high-translation-bandwidth
// workloads with a 16K shared TLB (isolating serialization from capacity).
func (s *Suite) Fig5() ([]Fig5Row, string) {
	var rows []Fig5Row
	for _, bw := range fig5Bandwidths {
		cfg := fig5Config(bw)
		var rel []float64
		for _, g := range s.highBandwidth() {
			ideal := s.Run(g.Name, core.DesignIdeal())
			rel = append(rel, s.Run(g.Name, cfg).RelativeTime(ideal))
		}
		rows = append(rows, Fig5Row{Bandwidth: bw, RelativeTime: mean(rel)})
	}
	t := &report.Table{
		Title: "Figure 5. Impact of the IOMMU TLB bandwidth limit (high translation bandwidth workloads,\n" +
			"16K-entry IOMMU TLB; serialization overhead = relative time - 100%).",
		Headers: []string{"Peak BW (acc/cy)", "Relative time", "Serialization overhead", "Bar"},
	}
	maxV := rows[0].RelativeTime
	if maxV < 1 {
		maxV = 1
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Bandwidth), report.Pct(r.RelativeTime),
			report.Pct(r.RelativeTime-1), report.Bar(r.RelativeTime, maxV, 40))
	}
	return rows, t.Render()
}

// ---------------------------------------------------------------------------
// Figure 8: IOMMU access-rate reduction from the virtual cache hierarchy.

// Fig8Row compares baseline and VC shared-TLB traffic for one workload:
// access rates (the paper's y-axis) and request totals (rates mislead when
// the VC also shortens the run several-fold).
type Fig8Row struct {
	Workload                  string
	BaselineMean, BaselineStd float64
	VCMean, VCStd             float64
	BaselineReqs, VCReqs      uint64
	HighBandwidth             bool
}

// TotalReduction returns the reduction in total shared-TLB requests.
func (r Fig8Row) TotalReduction() float64 {
	if r.BaselineReqs == 0 {
		return 0
	}
	return 1 - float64(r.VCReqs)/float64(r.BaselineReqs)
}

// Fig8 measures shared-TLB lookups, baseline vs virtual caches.
func (s *Suite) Fig8() ([]Fig8Row, string) {
	var rows []Fig8Row
	var reductionHB []float64
	for _, g := range s.gens {
		base := s.Run(g.Name, baseline512Probed())
		vc := s.Run(g.Name, core.DesignVCOpt())
		row := Fig8Row{
			Workload:     g.Name,
			BaselineMean: base.IOMMURate.Mean, BaselineStd: base.IOMMURate.StdDev,
			VCMean: vc.IOMMURate.Mean, VCStd: vc.IOMMURate.StdDev,
			BaselineReqs: base.IOMMU.Requests, VCReqs: vc.IOMMU.Requests,
			HighBandwidth: g.HighBandwidth,
		}
		rows = append(rows, row)
		if g.HighBandwidth && row.BaselineReqs > 0 {
			reductionHB = append(reductionHB, row.TotalReduction())
		}
	}
	t := &report.Table{
		Title: "Figure 8. Bandwidth reduction of IOMMU TLB.\n" +
			"Rates are per cycle of each design's own runtime (the VC also runs\n" +
			"several times faster, so total requests tell the filtering story).",
		Headers: []string{"Workload", "Base acc/cy", "VC acc/cy", "Base reqs", "VC reqs", "Total reduction", "Bar (VC reqs vs base)"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, report.F(r.BaselineMean), report.F(r.VCMean),
			report.I(r.BaselineReqs), report.I(r.VCReqs), report.Pct(r.TotalReduction()),
			report.Bar(float64(r.VCReqs), float64(r.BaselineReqs), 30))
	}
	out := t.Render()
	out += fmt.Sprintf("\nAverage reduction in total shared-TLB requests, high-bandwidth workloads: %s\n"+
		"(the paper filters ~66%% of TLB misses; low-bandwidth workloads may issue more\n"+
		"per-line VC translations than per-page TLB misses, but stay far below the\n"+
		"1-lookup/cycle port bandwidth, so — as in the paper — they see no degradation)\n",
		report.Pct(mean(reductionHB)))
	return rows, out
}

// ---------------------------------------------------------------------------
// Figure 9: end-to-end performance relative to the IDEAL MMU.

// Fig9Row is one workload's performance (IDEAL = 1.0, higher is better).
type Fig9Row struct {
	Workload                         string
	Base512, Base16K, VCNoOpt, VCOpt float64
}

// Fig9 reports performance relative to IDEAL for the high-bandwidth
// workloads plus the all-workload average.
func (s *Suite) Fig9() ([]Fig9Row, string) {
	perf := func(wl string, cfg core.Config) float64 {
		ideal := s.Run(wl, core.DesignIdeal())
		return ideal.RelativeTime(s.Run(wl, cfg)) // ideal.Cycles / design.Cycles
	}
	var rows []Fig9Row
	for _, g := range s.highBandwidth() {
		rows = append(rows, Fig9Row{
			Workload: g.Name,
			Base512:  perf(g.Name, baseline512Probed()),
			Base16K:  perf(g.Name, core.DesignBaseline16K()),
			VCNoOpt:  perf(g.Name, core.DesignVC()),
			VCOpt:    perf(g.Name, core.DesignVCOpt()),
		})
	}
	var avg Fig9Row
	avg.Workload = "Average(ALL)"
	var a512, a16k, avc, avco []float64
	for _, g := range s.gens {
		a512 = append(a512, perf(g.Name, baseline512Probed()))
		a16k = append(a16k, perf(g.Name, core.DesignBaseline16K()))
		avc = append(avc, perf(g.Name, core.DesignVC()))
		avco = append(avco, perf(g.Name, core.DesignVCOpt()))
	}
	avg.Base512, avg.Base16K, avg.VCNoOpt, avg.VCOpt = mean(a512), mean(a16k), mean(avc), mean(avco)
	rows = append(rows, avg)

	t := &report.Table{
		Title:   "Figure 9. Performance relative to IDEAL MMU (1.00 = ideal; closer to 1.0 is better).",
		Headers: []string{"Workload", "Baseline 512", "Baseline 16K", "VC W/O OPT", "VC With OPT"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, report.F2(r.Base512), report.F2(r.Base16K), report.F2(r.VCNoOpt), report.F2(r.VCOpt))
	}
	out := t.Render()
	// §4.1 companion claim: FBT hit rate for shared-TLB misses.
	var fbtHit []float64
	for _, g := range s.gens {
		r := s.Run(g.Name, core.DesignVCOpt())
		if r.IOMMU.TLBMisses > 0 {
			fbtHit = append(fbtHit, float64(r.IOMMU.FBTHits)/float64(r.IOMMU.TLBMisses))
		}
	}
	out += fmt.Sprintf("\nShared-TLB misses resolved by the FBT (second-level TLB): %s on average (paper: ~74%%)\n",
		report.Pct(mean(fbtHit)))
	return rows, out
}

// ---------------------------------------------------------------------------
// Figure 10: comparison with large per-CU TLBs.

// Fig10Row is one workload's VC speedup over the 128-entry per-CU TLB
// baseline.
type Fig10Row struct {
	Workload string
	Speedup  float64
}

// Fig10 compares the VC hierarchy against 128-entry fully-associative
// per-CU TLBs with a 16K shared TLB.
func (s *Suite) Fig10() ([]Fig10Row, string) {
	var rows []Fig10Row
	var all []float64
	for _, g := range s.highBandwidth() {
		big := s.Run(g.Name, core.DesignBaselineLargePerCU())
		vc := s.Run(g.Name, core.DesignVCOpt())
		sp := vc.SpeedupOver(big)
		rows = append(rows, Fig10Row{Workload: g.Name, Speedup: sp})
		all = append(all, sp)
	}
	rows = append(rows, Fig10Row{Workload: "Average", Speedup: mean(all)})
	t := &report.Table{
		Title:   "Figure 10. Speedup of the VC hierarchy over larger (128-entry) per-CU TLBs + 16K IOMMU TLB.",
		Headers: []string{"Workload", "Speedup", "Bar"},
	}
	var maxV float64
	for _, r := range rows {
		if r.Speedup > maxV {
			maxV = r.Speedup
		}
	}
	for _, r := range rows {
		t.AddRow(r.Workload, report.F2(r.Speedup)+"x", report.Bar(r.Speedup, maxV, 40))
	}
	return rows, t.Render()
}

// ---------------------------------------------------------------------------
// Figure 11: L1-only virtual caches vs the whole hierarchy.

// Fig11Data holds average speedups relative to Baseline 16K.
type Fig11Data struct {
	L1Only32  float64
	L1Only128 float64
	FullVC    float64
}

// Fig11 compares L1-only virtual cache designs with the full hierarchy.
func (s *Suite) Fig11() (Fig11Data, string) {
	var s32, s128, sfull []float64
	for _, g := range s.gens {
		base := s.Run(g.Name, core.DesignBaseline16K())
		s32 = append(s32, s.Run(g.Name, core.DesignL1OnlyVC(32)).SpeedupOver(base))
		s128 = append(s128, s.Run(g.Name, core.DesignL1OnlyVC(128)).SpeedupOver(base))
		sfull = append(sfull, s.Run(g.Name, core.DesignVCOpt()).SpeedupOver(base))
	}
	d := Fig11Data{L1Only32: mean(s32), L1Only128: mean(s128), FullVC: mean(sfull)}
	t := &report.Table{
		Title:   "Figure 11. Speedup relative to Baseline 16K (all workloads).",
		Headers: []string{"Design", "Speedup", "Bar"},
	}
	maxV := d.FullVC
	if d.L1Only32 > maxV {
		maxV = d.L1Only32
	}
	if d.L1Only128 > maxV {
		maxV = d.L1Only128
	}
	t.AddRow("L1-Only VC (32)", report.F2(d.L1Only32)+"x", report.Bar(d.L1Only32, maxV, 40))
	t.AddRow("L1-Only VC (128)", report.F2(d.L1Only128)+"x", report.Bar(d.L1Only128, maxV, 40))
	t.AddRow("L1 & L2 VC", report.F2(d.FullVC)+"x", report.Bar(d.FullVC, maxV, 40))
	out := t.Render()
	if d.L1Only32 > 0 {
		out += fmt.Sprintf("\nWhole-hierarchy VC vs L1-only VC(32): %.2fx additional speedup (paper: 1.31x)\n",
			d.FullVC/d.L1Only32)
	}
	return d, out
}

// ---------------------------------------------------------------------------
// Figure 12 (appendix): lifetimes of pages in TLBs vs caches.

// Fig12Row is one point of the lifetime CDFs.
type Fig12Row struct {
	LifetimeNs float64
	TLBEntry   float64 // P(lifetime <= x)
	L1Data     float64
	L2Data     float64
}

// fig12Workload picks Figure 12's subject: bfs, or the suite's first
// workload when bfs is not selected.
func (s *Suite) fig12Workload() string {
	for _, g := range s.gens {
		if g.Name == "bfs" {
			return g.Name
		}
	}
	return s.gens[0].Name
}

// fig12Config is Baseline 512 with lifetime tracking on.
func fig12Config() core.Config {
	cfg := baseline512Probed()
	cfg.Name = "Baseline 512 (lifetimes)"
	cfg.TrackLifetimes = true
	return cfg
}

// Fig12 records residence-time CDFs for the bfs workload (or the suite's
// first workload if bfs is not selected).
func (s *Suite) Fig12() ([]Fig12Row, string) {
	wl := s.fig12Workload()
	r := s.Run(wl, fig12Config())
	const cyclesPerNs = 0.7 // 700 MHz
	var rows []Fig12Row
	for ns := 0.0; ns <= 40000; ns += 2500 {
		cy := ns * cyclesPerNs
		rows = append(rows, Fig12Row{
			LifetimeNs: ns,
			TLBEntry:   r.Lifetimes.TLBEntries.At(cy),
			L1Data:     r.Lifetimes.L1Data.At(cy),
			L2Data:     r.Lifetimes.L2Data.At(cy),
		})
	}
	t := &report.Table{
		Title: fmt.Sprintf("Figure 12. Lifetime CDFs of per-CU TLB entries vs cache data (%s).\n"+
			"TLB entries die young; cache lines stay active far longer - the filtering opportunity.", wl),
		Headers: []string{"Lifetime (ns)", "TLB entry", "L1 data (active)", "L2 data (active)"},
	}
	for _, row := range rows {
		t.AddRow(fmt.Sprintf("%.0f", row.LifetimeNs), report.Pct(row.TLBEntry),
			report.Pct(row.L1Data), report.Pct(row.L2Data))
	}
	return rows, t.Render()
}

// ---------------------------------------------------------------------------

// Figures lists the available experiment ids in order.
func Figures() []string {
	return []string{"table1", "table2", "2", "3", "4", "5", "8", "9", "10", "11", "12"}
}

// Render runs one experiment by id and returns its text. The figure's
// simulations execute on the suite's worker pool first (see Precompute),
// so even a single figure's independent runs go wide; the serial render
// below then reads memoized results in a deterministic order.
func (s *Suite) Render(id string) (string, error) {
	if err := s.Precompute(id); err != nil {
		return "", err
	}
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "2":
		_, out := s.Fig2()
		return out, nil
	case "3":
		_, out := s.Fig3()
		return out, nil
	case "4":
		_, out := s.Fig4()
		return out, nil
	case "5":
		_, out := s.Fig5()
		return out, nil
	case "8":
		_, out := s.Fig8()
		return out, nil
	case "9":
		_, out := s.Fig9()
		return out, nil
	case "10":
		_, out := s.Fig10()
		return out, nil
	case "11":
		_, out := s.Fig11()
		return out, nil
	case "12":
		_, out := s.Fig12()
		return out, nil
	case "area":
		return Area(), nil
	case "banked":
		_, out := s.Banked()
		return out, nil
	case "largepages":
		_, out := s.LargePages()
		return out, nil
	case "dsr":
		_, out := s.DSR()
		return out, nil
	case "energy":
		_, out := s.Energy()
		return out, nil
	case "churn":
		_, out := s.Churn()
		return out, nil
	default:
		return "", fmt.Errorf("experiments: unknown figure %q (have %s; extras: %s)",
			id, strings.Join(Figures(), ", "), strings.Join(Extras(), ", "))
	}
}

// RenderAll runs every experiment and concatenates the reports. The
// union of all figures' runs is precomputed up front so runs shared
// across figures parallelize together.
func (s *Suite) RenderAll() string {
	if err := s.Precompute(Figures()...); err != nil {
		panic(err)
	}
	var b strings.Builder
	for _, id := range Figures() {
		out, err := s.Render(id)
		if err != nil {
			panic(err)
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String()
}
