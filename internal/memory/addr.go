// Package memory provides the virtual-memory substrate: address types,
// 4KB pages and 128B cache lines, a 4-level radix page table with
// per-level physical node addresses (so page-walk caches can be modeled),
// a physical frame allocator, and demand-mapped address spaces with
// synonym support.
package memory

// Address geometry. The paper's system uses 4KB pages and 128B cache
// lines, giving 32 lines per page (which is why the FBT bit vector is
// 32 bits wide).
const (
	PageShift    = 12
	PageSize     = 1 << PageShift
	LineShift    = 7
	LineSize     = 1 << LineShift
	LinesPerPage = PageSize / LineSize // 32
)

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// VPN is a virtual page number.
type VPN uint64

// PPN is a physical page number.
type PPN uint64

// ASID identifies a virtual address space.
type ASID uint16

// Page returns the VPN containing the address.
func (a VAddr) Page() VPN { return VPN(a >> PageShift) }

// Line returns the virtual line address (address of the containing 128B
// line).
func (a VAddr) Line() VAddr { return a &^ (LineSize - 1) }

// LineIndex returns the index (0..31) of the address's line within its page.
func (a VAddr) LineIndex() int { return int(a>>LineShift) & (LinesPerPage - 1) }

// Offset returns the byte offset within the page.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Page returns the PPN containing the address.
func (a PAddr) Page() PPN { return PPN(a >> PageShift) }

// Line returns the physical line address.
func (a PAddr) Line() PAddr { return a &^ (LineSize - 1) }

// LineIndex returns the index (0..31) of the address's line within its page.
func (a PAddr) LineIndex() int { return int(a>>LineShift) & (LinesPerPage - 1) }

// Base returns the first byte address of the page.
func (p VPN) Base() VAddr { return VAddr(p) << PageShift }

// Base returns the first byte address of the physical page.
func (p PPN) Base() PAddr { return PAddr(p) << PageShift }

// Perm is a page permission bit set.
type Perm uint8

// Permission bits.
const (
	PermRead  Perm = 1 << iota // page may be read
	PermWrite                  // page may be written
)

// Allows reports whether p grants the access described by write.
func (p Perm) Allows(write bool) bool {
	if write {
		return p&PermWrite != 0
	}
	return p&PermRead != 0
}

func (p Perm) String() string {
	switch {
	case p&PermRead != 0 && p&PermWrite != 0:
		return "rw"
	case p&PermRead != 0:
		return "r-"
	case p&PermWrite != 0:
		return "-w"
	default:
		return "--"
	}
}
