// Conservative parallel execution over a set of partition engines.
//
// A Partitioned runner drives one Engine per system partition through
// synchronized cycle windows. The window width is the lookahead: the
// minimum latency of any cross-partition message. Within a window every
// partition executes its own events independently (possibly on separate
// OS threads); events destined for another partition are buffered in a
// per-source outbox and merged into the destination engines at the window
// barrier, in canonical (when, source partition, local order) order.
//
// Because a message sent by an event executing at cycle t carries a delay
// of at least the lookahead L, and every event in the window [W, W+L-1]
// has t >= W, the message arrives at t+delay >= W+L — strictly after the
// window — so no partition can ever miss a cross-partition event that
// should have executed inside its current window. The schedule is
// therefore a pure function of the partition graph, independent of the
// worker count: one worker and N workers execute byte-identical runs.
package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// crossMsg is one buffered cross-partition event.
type crossMsg struct {
	when uint64
	dst  int32
	h    Handler
	arg  uint64
}

// Partitioned coordinates a set of partition engines through conservative
// cycle windows. Construct with NewPartitioned; drive with Run.
type Partitioned struct {
	engines   []*Engine
	lookahead uint64
	owner     []int // partition index -> worker index
	workers   int

	outbox [][]crossMsg // per-source-partition buffered sends

	windows   uint64 // synchronization windows executed
	crossings uint64 // cross-partition messages delivered

	// Parallel-phase state (all atomic; the spin barrier's happens-before
	// edges come from these).
	epoch   atomic.Uint64
	limit   atomic.Uint64
	stop    atomic.Bool
	arrived atomic.Int64

	panics  []any // per-worker captured panic values
	started bool
	done    chan struct{}
}

// NewPartitioned builds a runner over the given engines. lookahead is the
// minimum cross-partition message delay in cycles (clamped to >= 1).
// workers bounds the OS-thread parallelism; it is clamped to
// [1, min(len(engines), GOMAXPROCS)]. Worker 0 always owns partition 0
// (by convention the shared backend); the remaining partitions are
// assigned round-robin over workers 1..workers-1, or all to worker 0 when
// workers == 1. The executed schedule is identical for every worker
// count.
func NewPartitioned(engines []*Engine, lookahead uint64, workers int) *Partitioned {
	if len(engines) == 0 {
		panic("sim: NewPartitioned with no engines")
	}
	if lookahead == 0 {
		lookahead = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	p := &Partitioned{
		engines:   engines,
		lookahead: lookahead,
		workers:   workers,
		outbox:    make([][]crossMsg, len(engines)),
		owner:     make([]int, len(engines)),
	}
	for i := range p.owner {
		if i == 0 || workers == 1 {
			p.owner[i] = 0
		} else {
			p.owner[i] = (i-1)%(workers-1) + 1
		}
	}
	return p
}

// Lookahead returns the window width in cycles.
func (p *Partitioned) Lookahead() uint64 { return p.lookahead }

// Workers returns the resolved worker count.
func (p *Partitioned) Workers() int { return p.workers }

// Windows returns the number of synchronization windows executed so far.
func (p *Partitioned) Windows() uint64 { return p.windows }

// Crossings returns the number of cross-partition messages delivered.
func (p *Partitioned) Crossings() uint64 { return p.crossings }

// Engine returns the partition's engine.
func (p *Partitioned) Engine(part int) *Engine { return p.engines[part] }

// Send buffers fn for the dst partition, delay cycles after the src
// partition's current cycle. It must be called from src's executing
// event (or between windows); delivery happens at the next window
// barrier. For correctness under workers > 1, delay must be >= the
// lookahead; smaller delays are still delivered deterministically but
// clamp to the barrier cycle.
func (p *Partitioned) Send(src, dst int, delay uint64, fn func()) {
	p.SendEvent(src, dst, delay, funcHandler(fn), 0)
}

// SendEvent is Send without the closure: h.Handle(arg) fires on dst.
func (p *Partitioned) SendEvent(src, dst int, delay uint64, h Handler, arg uint64) {
	p.outbox[src] = append(p.outbox[src], crossMsg{
		when: p.engines[src].now + delay,
		dst:  int32(dst),
		h:    h,
		arg:  arg,
	})
}

// flush delivers every outbox into the destination engines in canonical
// order: ascending when, ties broken by source partition then by send
// order within the source. No sorting is needed: engines fire events in
// cycle order regardless of insertion order and assign same-cycle FIFO
// rank by insertion order (the overflow heap keys on (when, seq) with the
// same property), so walking the outboxes source-ascending reproduces the
// canonical tie-break exactly, whichever worker produced each message.
func (p *Partitioned) flush() {
	for src := range p.outbox {
		ob := p.outbox[src]
		for i := range ob {
			p.engines[ob[i].dst].at(ob[i].when, ob[i].h, ob[i].arg)
			ob[i] = crossMsg{} // release handler references
		}
		p.crossings += uint64(len(ob))
		p.outbox[src] = ob[:0]
	}
}

// nextWindow returns the earliest pending event cycle across all
// partitions, after outboxes have been flushed.
func (p *Partitioned) nextWindow() (uint64, bool) {
	var min uint64
	ok := false
	for _, e := range p.engines {
		if w, has := e.NextEvent(); has && (!ok || w < min) {
			min, ok = w, true
		}
	}
	return min, ok
}

// Run executes windows until every engine drains or onWindow returns
// false. onWindow (optional) runs at each barrier — workers quiescent,
// all engines advanced to the window limit — and may inspect any
// partition state; returning false stops the run. Run may be called once
// per Partitioned.
func (p *Partitioned) Run(onWindow func(limit uint64) bool) {
	if p.workers <= 1 {
		p.runSerial(onWindow)
		return
	}
	p.runParallel(onWindow)
}

func (p *Partitioned) runSerial(onWindow func(limit uint64) bool) {
	for {
		p.flush()
		w, ok := p.nextWindow()
		if !ok {
			return
		}
		limit := w + p.lookahead - 1
		p.windows++
		p.runOwned(0, limit) // workers==1 ⇒ worker 0 owns every partition
		if onWindow != nil && !onWindow(limit) {
			return
		}
	}
}

// runParallel runs the same schedule as runSerial with the partitions
// spread over worker goroutines. The caller's goroutine acts as worker 0
// (the leader): it merges outboxes, computes each window, publishes the
// limit, executes its own partitions, and joins the others at a spin
// barrier. Atomics provide the happens-before edges, so the runner is
// race-detector clean.
func (p *Partitioned) runParallel(onWindow func(limit uint64) bool) {
	if p.started {
		panic("sim: Partitioned.Run called twice")
	}
	p.started = true
	p.panics = make([]any, p.workers)
	p.done = make(chan struct{})
	var finished atomic.Int64
	for w := 1; w < p.workers; w++ {
		go func(w int) {
			defer func() {
				if r := recover(); r != nil {
					p.panics[w] = r
					p.stop.Store(true)
					// The leader is joining this window; unblock it.
					p.arrived.Add(1)
				}
				if finished.Add(1) == int64(p.workers-1) {
					close(p.done)
				}
			}()
			p.workerLoop(w)
		}(w)
	}

	var epoch uint64
	abort := func() {
		p.stop.Store(true)
		p.epoch.Store(epoch + 1) // release workers so they observe stop
		<-p.done
	}
	// A panic in a leader-owned partition must still release the workers,
	// or they would spin forever on the never-advancing epoch.
	defer func() {
		if r := recover(); r != nil {
			abort()
			panic(r)
		}
	}()
	for {
		p.flush()
		w, ok := p.nextWindow()
		if !ok || p.stop.Load() {
			abort()
			break
		}
		limit := w + p.lookahead - 1
		p.windows++
		p.limit.Store(limit)
		p.arrived.Store(0)
		epoch++
		p.epoch.Store(epoch) // opens the window for workers
		p.runOwned(0, limit)
		// Join barrier. stop breaks the wait: a panicking worker raises it
		// and its still-healthy peers may observe it and exit without
		// arriving; abort() below waits for every worker to return before
		// the leader proceeds.
		for p.arrived.Load() != int64(p.workers-1) && !p.stop.Load() {
			runtime.Gosched()
		}
		if p.stop.Load() {
			abort()
			break
		}
		if onWindow != nil && !onWindow(limit) {
			abort()
			break
		}
	}
	for w, r := range p.panics {
		if r != nil {
			panic(fmt.Sprintf("sim: partition worker %d: %v", w, r))
		}
	}
}

// workerLoop is the non-leader body: wait for the leader to open a
// window, execute the owned partitions up to its limit, report arrival.
func (p *Partitioned) workerLoop(w int) {
	var seen uint64
	for {
		e := p.epoch.Load()
		if e == seen {
			runtime.Gosched()
			continue
		}
		seen = e
		if p.stop.Load() {
			return
		}
		p.runOwned(w, p.limit.Load())
		p.arrived.Add(1)
	}
}

// runOwned advances every partition owned by worker w to the limit.
// Engines with nothing queued are skipped without advancing their clock:
// a stalled frontend's next event arrives by absolute-cycle mailbox
// delivery, so a lagging clock is harmless and the skip saves a
// clock-jump per window per idle partition.
func (p *Partitioned) runOwned(w int, limit uint64) {
	for part, owner := range p.owner {
		if owner == w && p.engines[part].Pending() > 0 {
			p.engines[part].RunUntil(limit)
		}
	}
}
