package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"vcache/internal/stats"
)

func TestRegistryCounterGaugeSnapshot(t *testing.T) {
	r := NewRegistry()
	var hits, misses uint64
	peak := 3
	r.Counter("l1.cu0.hits", &hits)
	r.Counter("l1.cu0.misses", &misses)
	r.IntGauge("l2.page_peak", &peak)
	r.Gauge("l1.cu0.hit_ratio", func() float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})

	hits, misses = 30, 10
	if v, ok := r.Value("l1.cu0.hits"); !ok || v != 30 {
		t.Fatalf("Value(hits) = %v, %v", v, ok)
	}
	if v, ok := r.Value("l1.cu0.hit_ratio"); !ok || v != 0.75 {
		t.Fatalf("Value(hit_ratio) = %v, %v", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value of unregistered metric reported ok")
	}

	s := r.Snapshot(1234)
	if s.Cycle != 1234 || len(s.Names) != r.Len() {
		t.Fatalf("snapshot cycle=%d names=%d", s.Cycle, len(s.Names))
	}
	if !strings.HasPrefix(s.Names[0], "l1.") {
		t.Fatalf("names not sorted: %v", s.Names)
	}
	for i := 1; i < len(s.Names); i++ {
		if s.Names[i-1] >= s.Names[i] {
			t.Fatalf("names not sorted at %d: %v", i, s.Names)
		}
	}
	if v, ok := s.Value("l2.page_peak"); !ok || v != 3 {
		t.Fatalf("snapshot Value(page_peak) = %v, %v", v, ok)
	}

	// Counter mutations after the snapshot must not affect it.
	hits = 99
	if v, _ := s.Value("l1.cu0.hits"); v != 30 {
		t.Fatalf("snapshot not a copy: %v", v)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var c uint64
	r.Counter("x", &c)
	r.Counter("x", &c)
}

func TestScopePrefixes(t *testing.T) {
	r := NewRegistry()
	var c uint64
	sc := r.Scope("iommu").Scope("tlb")
	sc.Counter("hits", &c)
	c = 7
	if v, ok := r.Value("iommu.tlb.hits"); !ok || v != 7 {
		t.Fatalf("scoped metric = %v, %v", v, ok)
	}
}

func TestRegistrySampler(t *testing.T) {
	r := NewRegistry()
	s := stats.NewIntervalSampler(100)
	r.Sampler("iommu.rate", s)
	s.Record(5)
	s.Record(7)
	s.Record(150)
	if v, ok := r.Value("iommu.rate.total"); !ok || v != 3 {
		t.Fatalf("sampler total = %v, %v", v, ok)
	}
	if v, ok := r.Value("iommu.rate.mean"); !ok || v <= 0 {
		t.Fatalf("sampler mean = %v, %v", v, ok)
	}
}

func TestSnapshotSum(t *testing.T) {
	r := NewRegistry()
	var a, b, other uint64 = 3, 4, 100
	r.Counter("l1.cu0.read_hits", &a)
	r.Counter("l1.cu1.read_hits", &b)
	r.Counter("l1.cu0.read_misses", &other)
	s := r.Snapshot(0)
	if got := s.Sum("l1.", ".read_hits"); got != 7 {
		t.Fatalf("Sum = %v, want 7", got)
	}
}

func TestSnapshotJSONL(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 42
	r.Counter("dram.reads", &c)
	var sb strings.Builder
	if err := r.Snapshot(9).WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cycle   uint64             `json:"cycle"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSONL %q: %v", sb.String(), err)
	}
	if doc.Cycle != 9 || doc.Metrics["dram.reads"] != 42 {
		t.Fatalf("decoded %+v", doc)
	}
}

func TestRecorderSeries(t *testing.T) {
	r := NewRegistry()
	var c uint64
	r.Counter("n", &c)
	rec := NewRecorder(r)
	for i := 1; i <= 3; i++ {
		c = uint64(i * 10)
		rec.Record(uint64(i * 100))
	}
	rows := rec.Rows()
	if len(rows) != 3 || rows[2].Cycle != 300 {
		t.Fatalf("rows %+v", rows)
	}
	if v, _ := rows[1].Value("n"); v != 20 {
		t.Fatalf("row 1 value %v", v)
	}

	var jl strings.Builder
	if err := rec.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(jl.String(), "\n"); got != 3 {
		t.Fatalf("JSONL lines = %d, want 3", got)
	}

	var cs strings.Builder
	if err := rec.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	want := "cycle,n\n100,10\n200,20\n300,30\n"
	if cs.String() != want {
		t.Fatalf("CSV = %q, want %q", cs.String(), want)
	}
}

// A nil emitter must be free: it is the always-on disabled path inside
// component hot loops (TLB lookups, IOMMU requests).
func TestNilEmitterZeroAlloc(t *testing.T) {
	var e *Emitter
	if n := testing.AllocsPerRun(1000, func() { e.Emit("miss", 42) }); n != 0 {
		t.Fatalf("nil Emitter.Emit: %v allocs/op, want 0", n)
	}
	if e.Enabled() {
		t.Fatal("nil emitter reports enabled")
	}
}

func TestEmitterStamps(t *testing.T) {
	var buf Buffer
	cycle := uint64(77)
	e := NewEmitter(&buf, "iommu", func() uint64 { return cycle })
	e.Emit("enqueue", 5)
	cycle = 99
	e.Emit("dequeue", 5)
	if len(buf.Events) != 2 {
		t.Fatalf("events %v", buf.Events)
	}
	want := Event{Cycle: 77, Comp: "iommu", Name: "enqueue", Arg: 5}
	if buf.Events[0] != want {
		t.Fatalf("event %+v, want %+v", buf.Events[0], want)
	}
	if buf.Events[1].Cycle != 99 {
		t.Fatalf("second event not restamped: %+v", buf.Events[1])
	}
}

func TestTraceWriterProducesValidChromeTrace(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	p := tw.Process("pagerank/VC With OPT")
	p.Emit(Event{Cycle: 10, Comp: "iommu", Name: "enqueue", Arg: 1})
	p.Emit(Event{Cycle: 12, Comp: "ptw", Name: "walk.start", Arg: 1})
	p.Emit(Event{Cycle: 40, Comp: "iommu", Name: "dequeue", Arg: 1})
	q := tw.Process("pagerank/Baseline 512")
	q.Emit(Event{Cycle: 11, Comp: "tlb.cu3", Name: "miss", Arg: 9})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var records []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, sb.String())
	}
	// 2 process_name + 3 thread_name metadata + 4 events.
	if len(records) != 9 {
		t.Fatalf("got %d records, want 9", len(records))
	}
	var events, metas int
	for _, rec := range records {
		switch rec["ph"] {
		case "M":
			metas++
		case "i":
			events++
			if rec["ts"] == nil || rec["cat"] == nil {
				t.Fatalf("event missing ts/cat: %v", rec)
			}
		default:
			t.Fatalf("unexpected phase in %v", rec)
		}
	}
	if events != 4 || metas != 5 {
		t.Fatalf("events=%d metas=%d", events, metas)
	}
	// Distinct processes keep distinct pids.
	if sb.String() == "" || !strings.Contains(sb.String(), `"pid":1`) {
		t.Fatal("second process did not get pid 1")
	}
}
