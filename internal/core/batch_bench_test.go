package core

import (
	"context"
	"testing"

	"vcache/internal/memory"
	"vcache/internal/workloads"
)

// Translation-throughput microbenchmark: the batched front half
// (acquire → page-chunk → span-probe → release) against the per-line
// Lookup loop it replaces, on three 32-lane warp streams. "lookups/s" is
// coalesced lines translated per second — the front-end's translation
// bandwidth.
//
//   - hit-heavy:     2 resident pages per warp (high dedup, all hits) —
//     the common case batching targets; expect well over the 1.5x goal.
//   - miss-heavy:    4 never-resident pages per warp — dedup still
//     collapses 32 probes to 4, misses stay misses.
//   - synonym-heavy: every line on its own resident alias page — zero
//     dedup, the adversarial floor; batching must not lose here.

const benchWarpLanes = 32

// benchStream builds 256 deterministic 32-line warps of the given flavour.
func benchStream(kind string) [][]memory.VAddr {
	warps := make([][]memory.VAddr, 256)
	rng := uint64(0x243f6a8885a308d3)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for w := range warps {
		lines := make([]memory.VAddr, benchWarpLanes)
		for l := range lines {
			var page uint64
			switch kind {
			case "hit-heavy":
				page = uint64(w%32)*2 + uint64(l/16) // pages 0..63
			case "miss-heavy":
				page = 1<<20 + uint64(w)*4 + uint64(l/8)
			default: // synonym-heavy: pages 64..319
				page = 64 + uint64(w%8)*benchWarpLanes + uint64(l)
			}
			lines[l] = memory.VAddr(page*memory.PageSize + (next()%64)*memory.LineSize)
		}
		warps[w] = lines
	}
	return warps
}

// Real-workload end-to-end throughput: bfs under the baseline design,
// legacy vs batched front-end. ns/op is the wall-clock per full
// simulation; events/s the engine's event throughput (batching also
// shrinks the event count per instruction, so compare ns/op for the
// simulator-speed story).
func benchWorkloadRun(b *testing.B, cfg Config) {
	g, ok := workloads.ByName("bfs")
	if !ok {
		b.Fatal("bfs workload missing")
	}
	tr := g.Build(workloads.DefaultParams())
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := MustNew(cfg)
		if _, err := sys.RunContext(context.Background(), tr); err != nil {
			b.Fatal(err)
		}
		events += sys.Engine().Fired()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkRunBFSBaseline(b *testing.B) { benchWorkloadRun(b, DesignBaseline512()) }

func BenchmarkRunBFSBaselineBatched(b *testing.B) {
	cfg := DesignBaseline512()
	cfg.BatchedTranslation = true
	benchWorkloadRun(b, cfg)
}

func BenchmarkTranslateLines(b *testing.B) {
	for _, kind := range []string{"hit-heavy", "miss-heavy", "synonym-heavy"} {
		warps := benchStream(kind)
		for _, mode := range []string{"perline", "batched"} {
			mode := mode
			b.Run(kind+"/"+mode, func(b *testing.B) {
				cfg := smallCfg(DesignBaseline512())
				cfg.BatchedTranslation = true
				s := MustNew(cfg)
				// Make the hot sets resident (pages 0..319 fit the
				// 512-entry TLB without set conflicts).
				for p := uint64(0); p < 320; p++ {
					s.cuTLBs[0].Insert(s.asid, memory.VPN(p), memory.PPN(1000+p), memory.PermRead|memory.PermWrite)
				}
				nop := func() {}
				t := s.cuTLBs[0]
				var lines uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, wl := range warps {
						if mode == "perline" {
							for _, la := range wl {
								t.Lookup(s.asid, la.Page())
							}
						} else {
							f := s.acquireFrame(0, wl, false, nop)
							f.chunk()
							s.probeChunks(0, f)
							s.releaseFrame(0, f)
						}
						lines += uint64(len(wl))
					}
				}
				b.ReportMetric(float64(lines)/b.Elapsed().Seconds(), "lookups/s")
			})
		}
	}
}
