// TLB sizing study: the paper's §3.2 argument that bigger per-CU TLBs do
// not substitute for a virtual cache hierarchy. This example sweeps per-CU
// TLB sizes on one workload (the Figure 2 x-axis) and compares the best
// large-TLB baseline against the virtual cache hierarchy (Figure 10).
//
//	go run ./examples/tlbstudy [workload]
package main

import (
	"fmt"
	"os"

	"vcache"
)

func main() {
	name := "color_max"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	params := vcache.DefaultParams()
	tr := vcache.BuildWorkload(name, params)
	ideal := vcache.Run(vcache.DesignIdeal(), tr)

	fmt.Printf("per-CU TLB sweep on %s (Baseline 512)\n", name)
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "TLB size", "miss ratio", "filtered%", "cycles", "vs IDEAL")
	for _, size := range []int{16, 32, 64, 128, 0} {
		cfg := vcache.DesignBaseline512().WithPerCUTLB(size)
		cfg.ProbeResidency = true
		r := vcache.Run(cfg, tr)
		label := fmt.Sprintf("%d", size)
		if size == 0 {
			label = "infinite"
		}
		fmt.Printf("%-10s %11.1f%% %11.1f%% %12d %9.2fx\n",
			label, 100*r.PerCUTLBMissRatio(), 100*r.Probe.FilteredRatio(), r.Cycles, r.RelativeTime(ideal))
	}

	// Even against 128-entry fully-associative per-CU TLBs backed by a
	// 16K-entry shared TLB, the virtual cache hierarchy wins (Figure 10):
	big := vcache.Run(vcache.DesignBaselineLargePerCU(), tr)
	vc := vcache.Run(vcache.DesignVCOpt(), tr)
	fmt.Printf("\nVC hierarchy vs large (128-entry) per-CU TLBs: %.2fx speedup\n", vc.SpeedupOver(big))
	fmt.Printf("(and the VC design removes per-CU TLBs entirely: no lookup power on every access)\n")
}
