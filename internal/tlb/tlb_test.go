package tlb

import (
	"testing"
	"testing/quick"

	"vcache/internal/memory"
)

func TestLookupInsert(t *testing.T) {
	tb := New(Config{Entries: 4})
	if _, ok := tb.Lookup(1, 100); ok {
		t.Fatal("hit in empty TLB")
	}
	tb.Insert(1, 100, 555, memory.PermRead)
	e, ok := tb.Lookup(1, 100)
	if !ok || e.PPN != 555 || e.Perm != memory.PermRead {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	// Different ASID, same VPN: miss (homonym protection).
	if _, ok := tb.Lookup(2, 100); ok {
		t.Fatal("homonym hit across ASIDs")
	}
	s := tb.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	tb := New(Config{Entries: 2}) // fully associative, 2 entries
	tb.Insert(1, 10, 10, memory.PermRead)
	tb.Insert(1, 20, 20, memory.PermRead)
	tb.Lookup(1, 10) // refresh 10; 20 becomes LRU
	tb.Insert(1, 30, 30, memory.PermRead)
	if _, ok := tb.Lookup(1, 20); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := tb.Lookup(1, 10); !ok {
		t.Fatal("MRU entry evicted")
	}
	if tb.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tb.Stats().Evictions)
	}
}

func TestSetAssociative(t *testing.T) {
	tb := New(Config{Entries: 8, Assoc: 2}) // 4 sets of 2
	// Fill one set with conflicting VPNs (same set index mod 4).
	tb.Insert(1, 0, 1, memory.PermRead)
	tb.Insert(1, 4, 2, memory.PermRead)
	tb.Insert(1, 8, 3, memory.PermRead) // evicts VPN 0
	if _, ok := tb.Lookup(1, 0); ok {
		t.Fatal("conflict victim survived")
	}
	if _, ok := tb.Lookup(1, 4); !ok {
		t.Fatal("non-victim evicted")
	}
	// Other sets untouched.
	tb.Insert(1, 1, 9, memory.PermRead)
	if _, ok := tb.Lookup(1, 1); !ok {
		t.Fatal("cross-set interference")
	}
}

func TestInfiniteTLBNeverEvicts(t *testing.T) {
	tb := New(Config{Entries: 0})
	for i := 0; i < 10000; i++ {
		tb.Insert(1, memory.VPN(i), memory.PPN(i), memory.PermRead)
	}
	if tb.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", tb.Len())
	}
	if tb.Stats().Evictions != 0 {
		t.Fatal("infinite TLB evicted")
	}
	for i := 0; i < 10000; i++ {
		if _, ok := tb.Lookup(1, memory.VPN(i)); !ok {
			t.Fatalf("VPN %d missing", i)
		}
	}
}

func TestInvalidatePage(t *testing.T) {
	for _, entries := range []int{0, 8} {
		tb := New(Config{Entries: entries})
		tb.Insert(1, 7, 70, memory.PermRead)
		tb.Insert(2, 7, 71, memory.PermRead)
		if !tb.InvalidatePage(1, 7) {
			t.Fatal("InvalidatePage missed resident entry")
		}
		if tb.InvalidatePage(1, 7) {
			t.Fatal("InvalidatePage hit twice")
		}
		if _, ok := tb.Lookup(2, 7); !ok {
			t.Fatal("shootdown leaked across ASIDs")
		}
	}
}

func TestInvalidateAllAndASID(t *testing.T) {
	for _, entries := range []int{0, 16} {
		tb := New(Config{Entries: entries})
		for i := 0; i < 4; i++ {
			tb.Insert(1, memory.VPN(i), memory.PPN(i), memory.PermRead)
			tb.Insert(2, memory.VPN(i), memory.PPN(i), memory.PermRead)
		}
		tb.InvalidateASID(1)
		if tb.Len() != 4 {
			t.Fatalf("Len after ASID flush = %d, want 4", tb.Len())
		}
		tb.InvalidateAll()
		if tb.Len() != 0 {
			t.Fatalf("Len after full flush = %d, want 0", tb.Len())
		}
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	tb := New(Config{Entries: 4})
	tb.Insert(1, 5, 50, memory.PermRead)
	before := tb.Stats()
	if !tb.Probe(1, 5) || tb.Probe(1, 6) {
		t.Fatal("Probe gave wrong answer")
	}
	if tb.Stats() != before {
		t.Fatal("Probe disturbed stats")
	}
}

func TestLifetimeHook(t *testing.T) {
	var clock uint64
	var lifetimes []uint64
	tb := New(Config{Entries: 1})
	tb.Clock = func() uint64 { return clock }
	tb.OnEvict = func(e Entry, life uint64) { lifetimes = append(lifetimes, life) }
	clock = 100
	tb.Insert(1, 1, 1, memory.PermRead)
	clock = 350
	tb.Insert(1, 2, 2, memory.PermRead) // evicts entry inserted at 100
	if len(lifetimes) != 1 || lifetimes[0] != 250 {
		t.Fatalf("lifetimes = %v, want [250]", lifetimes)
	}
}

func TestReinsertRefreshes(t *testing.T) {
	tb := New(Config{Entries: 2})
	tb.Insert(1, 1, 1, memory.PermRead)
	tb.Insert(1, 1, 1, memory.PermRead|memory.PermWrite) // same key: update
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (reinsert duplicated)", tb.Len())
	}
	e, _ := tb.Lookup(1, 1)
	if e.Perm != memory.PermRead|memory.PermWrite {
		t.Fatal("reinsert did not update permissions")
	}
}

// Property: a finite TLB never holds more than its configured entries, and
// most-recently-inserted entries are always resident.
func TestCapacityProperty(t *testing.T) {
	f := func(vpns []uint16) bool {
		tb := New(Config{Entries: 16, Assoc: 4})
		for _, v := range vpns {
			tb.Insert(1, memory.VPN(v), memory.PPN(v), memory.PermRead)
			if !tb.Probe(1, memory.VPN(v)) {
				return false // just-inserted entry must be resident
			}
		}
		return tb.Len() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hit+miss counts equal lookups; hits return the inserted PPN.
func TestConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(Config{Entries: 8})
		shadow := make(map[memory.VPN]memory.PPN)
		lookups := uint64(0)
		for _, op := range ops {
			vpn := memory.VPN(op % 64)
			if op%3 == 0 {
				tb.Insert(1, vpn, memory.PPN(op), memory.PermRead)
				shadow[vpn] = memory.PPN(op)
			} else {
				lookups++
				e, ok := tb.Lookup(1, vpn)
				if ok && e.PPN != shadow[vpn] {
					return false // stale translation
				}
			}
		}
		s := tb.Stats()
		return s.Hits+s.Misses == lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
