package ptw

import (
	"testing"

	"vcache/internal/dram"
	"vcache/internal/memory"
	"vcache/internal/sim"
)

func setup(threads int) (*sim.Engine, *memory.PageTable, *Walker, *memory.FrameAlloc) {
	eng := sim.New()
	fa := memory.NewFrameAlloc(0x100)
	pt := memory.NewPageTable(fa)
	mem := dram.New(eng, dram.Config{Latency: 100, LinesPerCycle: 0})
	cfg := DefaultConfig()
	cfg.Threads = threads
	w := New(eng, cfg, pt, mem)
	return eng, pt, w, fa
}

func TestWalkSuccess(t *testing.T) {
	eng, pt, w, _ := setup(16)
	pt.Map(0x42, 0x999, memory.PermRead)
	var got Result
	done := false
	w.Walk(0x42, func(r Result) { got = r; done = true })
	eng.Run()
	if !done {
		t.Fatal("walk never completed")
	}
	if got.Fault || got.PTE.PPN != 0x999 {
		t.Fatalf("result = %+v", got)
	}
	// First walk: all four levels miss the PWC = 4 memory accesses at 100
	// cycles = 400 cycles.
	if eng.Now() != 400 {
		t.Fatalf("walk latency = %d, want 400", eng.Now())
	}
	s := w.Stats()
	if s.Walks != 1 || s.PWCMisses != 4 || s.PWCHits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPWCAcceleratesSecondWalk(t *testing.T) {
	eng, pt, w, _ := setup(16)
	pt.Map(0x100, 1, memory.PermRead)
	pt.Map(0x101, 2, memory.PermRead) // same upper levels
	var t1, t2 uint64
	w.Walk(0x100, func(Result) {
		t1 = eng.Now()
		w.Walk(0x101, func(Result) { t2 = eng.Now() })
	})
	eng.Run()
	first := t1
	second := t2 - t1
	if second >= first {
		t.Fatalf("second walk (%d) not faster than first (%d)", second, first)
	}
	// Second walk: 3 upper-level PWC hits plus the adjacent leaf PTE on
	// the same 64B PWC line (8 PTEs per line) = 4 hits at 2 cycles each.
	if second != 8 {
		t.Fatalf("second walk latency = %d, want 8", second)
	}
	if w.Stats().PWCHits != 4 {
		t.Fatalf("PWC hits = %d, want 4", w.Stats().PWCHits)
	}
}

func TestUncachedLeafConfig(t *testing.T) {
	// With CachedLevels = 3, leaf PTE reads always go to memory.
	eng := sim.New()
	fa := memory.NewFrameAlloc(0x100)
	pt := memory.NewPageTable(fa)
	mem := dram.New(eng, dram.Config{Latency: 100, LinesPerCycle: 0})
	cfg := DefaultConfig()
	cfg.CachedLevels = memory.Levels - 1
	w := New(eng, cfg, pt, mem)
	pt.Map(0x100, 1, memory.PermRead)
	pt.Map(0x101, 2, memory.PermRead)
	var t1, t2 uint64
	w.Walk(0x100, func(Result) {
		t1 = eng.Now()
		w.Walk(0x101, func(Result) { t2 = eng.Now() })
	})
	eng.Run()
	// Second walk: 3 PWC hits (2cy) + mandatory leaf DRAM access (100cy).
	if t2-t1 != 106 {
		t.Fatalf("second walk latency = %d, want 106", t2-t1)
	}
}

func TestWalkFault(t *testing.T) {
	eng, _, w, _ := setup(16)
	var got Result
	w.Walk(0xdead, func(r Result) { got = r })
	eng.Run()
	if !got.Fault {
		t.Fatal("walk of unmapped page did not fault")
	}
	if w.Stats().Faults != 1 {
		t.Fatalf("faults = %d", w.Stats().Faults)
	}
}

func TestThreadPoolLimitsAndQueues(t *testing.T) {
	eng, pt, w, _ := setup(2)
	for i := 0; i < 6; i++ {
		pt.Map(memory.VPN(0x1000+i*0x40000), memory.PPN(i+1), memory.PermRead) // distinct upper levels
	}
	completed := 0
	for i := 0; i < 6; i++ {
		vpn := memory.VPN(0x1000 + i*0x40000)
		w.Walk(vpn, func(r Result) {
			if r.Fault {
				t.Errorf("walk %v faulted", vpn)
			}
			completed++
		})
	}
	if w.Busy() != 2 || w.QueueLen() != 4 {
		t.Fatalf("busy=%d queued=%d, want 2/4", w.Busy(), w.QueueLen())
	}
	eng.Run()
	if completed != 6 {
		t.Fatalf("completed = %d, want 6", completed)
	}
	s := w.Stats()
	if s.QueuedWalks != 4 || s.QueueDelay == 0 {
		t.Fatalf("queue stats = %+v", s)
	}
	if w.Busy() != 0 || w.QueueLen() != 0 {
		t.Fatal("walker not drained")
	}
}

func TestConcurrencyOverlapsLatency(t *testing.T) {
	// 16 walks on 16 threads should take barely longer than 1 walk (DRAM
	// unlimited bandwidth here).
	eng, pt, w, _ := setup(16)
	for i := 0; i < 16; i++ {
		pt.Map(memory.VPN(i*0x40000+5), memory.PPN(i+1), memory.PermRead)
	}
	n := 0
	for i := 0; i < 16; i++ {
		w.Walk(memory.VPN(i*0x40000+5), func(Result) { n++ })
	}
	end := eng.Run()
	if n != 16 {
		t.Fatalf("completed %d", n)
	}
	if end != 400 { // all overlap perfectly
		t.Fatalf("16 concurrent walks took %d cycles, want 400", end)
	}
}
