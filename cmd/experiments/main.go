// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all                 # every table and figure
//	experiments -fig 9 -fig 10           # specific figures
//	experiments -workloads pagerank,bfs  # restrict the workload set
//	experiments -scale 2 -seed 7         # bigger inputs, different seed
//	experiments -parallel 1              # serial execution (default: all cores)
//
// Independent (workload, design) simulations run concurrently on a worker
// pool (-parallel, default NumCPU). Each simulation is single-threaded
// and deterministic, so the figure text is byte-identical at any
// -parallel setting; only wall-clock time changes.
//
// Runs are incremental: traces and results are stored in a
// content-addressed on-disk cache (default out/cache, or $VCACHE_DIR, or
// -cache-dir), so re-running with unchanged inputs reloads results instead
// of resimulating and produces byte-identical output. -no-cache disables
// the cache, -cache-stats reports its traffic.
//
// Output is the text rendering of each table/figure; absolute numbers
// depend on the synthetic inputs, but the shapes track the paper (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"vcache/internal/artifact"
	"vcache/internal/experiments"
	"vcache/internal/obs"
	"vcache/internal/prof"
	"vcache/internal/workloads"
)

type figList []string

func (f *figList) String() string     { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error { *f = append(*f, strings.Split(v, ",")...); return nil }

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure/table id to regenerate (repeatable; 'all' = everything)")
	scale := flag.Int("scale", 1, "workload input scale factor")
	seed := flag.Uint64("seed", 42, "synthetic input seed")
	cus := flag.Int("cus", 16, "number of compute units")
	warps := flag.Int("warps", 8, "warp contexts per CU")
	wl := flag.String("workloads", "", "comma-separated workload subset (default: all 15)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations (1 = serial; results are identical either way)")
	intraParallel := flag.Int("intra-parallel", 0, "partitioned-engine worker threads inside each simulation (0 = auto split with -parallel; results are byte-identical at any value)")
	batched := flag.Bool("batched-translation", false, "warp-level batched translation front-end for every run (cached separately from legacy results; no-op for designs without per-CU TLBs)")
	eagerFlush := flag.Bool("eager-flush", false, "per-entry eager bulk invalidation instead of epoch-based lazy (results are byte-identical; for cross-checking and flush-cost studies)")
	tenantsFlag := flag.String("tenants", "", "comma-separated tenant counts for the churn figure (default 2,8,24)")
	quiet := flag.Bool("q", false, "suppress per-run progress on stderr")
	csvOut := flag.String("csv", "", "also dump every simulated run's metrics to this CSV file")
	churnCSVOut := flag.String("churn-csv", "", "dump the tenant-churn grid (-fig churn) to this CSV file")
	metricsOut := flag.String("metrics", "", "dump every run's end-of-run metrics registry to this JSONL file")
	eventsOut := flag.String("events", "", "write a Chrome-trace event file covering every run (one process per run)")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (default $VCACHE_DIR or out/cache)")
	noCache := flag.Bool("no-cache", false, "disable the on-disk artifact cache")
	cacheStats := flag.Bool("cache-stats", false, "print artifact-cache traffic to stderr on exit")
	stream := flag.Bool("stream", false, "replay workloads from chunked (v4) streams: per-run memory stays bounded by the chunk budget; results are byte-identical")
	chunkBudget := flag.Int("chunk-budget", 0, "chunk byte budget for -stream (0 = default 4MB)")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	p := workloads.Params{Scale: *scale, NumCUs: *cus, WarpsPerCU: *warps, Seed: *seed}
	var subset []string
	if *wl != "" {
		subset = strings.Split(*wl, ",")
	}
	suite, err := experiments.New(p, subset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite.Workers = *parallel
	suite.IntraWorkers = *intraParallel
	suite.BatchedTranslation = *batched
	suite.EagerFlush = *eagerFlush
	if *tenantsFlag != "" {
		for _, s := range strings.Split(*tenantsFlag, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "experiments: bad -tenants value %q\n", s)
				os.Exit(1)
			}
			suite.ChurnTenants = append(suite.ChurnTenants, n)
		}
	}
	suite.StreamTraces = *stream
	suite.ChunkBudget = *chunkBudget
	if !*noCache {
		suite.Cache, err = artifact.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !*quiet {
		suite.Progress = experiments.ProgressWriter(os.Stderr)
	}
	suite.CaptureMetrics = *metricsOut != ""
	var eventsFile *os.File
	if *eventsOut != "" {
		eventsFile, err = os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		suite.EventTrace = obs.NewTraceWriter(eventsFile)
	}

	ids := []string(figs)
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	var expanded []string
	for _, id := range ids {
		switch id {
		case "all":
			expanded = append(expanded, experiments.Figures()...)
			expanded = append(expanded, experiments.Extras()...)
		case "paper":
			expanded = append(expanded, experiments.Figures()...)
		case "extras":
			expanded = append(expanded, experiments.Extras()...)
		default:
			expanded = append(expanded, id)
		}
	}
	ids = expanded
	// Execute the union of every requested figure's simulations on the
	// worker pool up front; rendering below then reads memoized results,
	// so the figure text is byte-identical at any -parallel setting.
	if err := suite.Precompute(ids...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, id := range ids {
		out, err := suite.Render(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := suite.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d runs to %s\n", suite.RunCount(), *csvOut)
	}

	if *churnCSVOut != "" {
		points, _ := suite.Churn()
		if err := os.WriteFile(*churnCSVOut, []byte(experiments.WriteChurnCSV(points)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d churn points to %s\n", len(points), *churnCSVOut)
	}

	if *metricsOut != "" {
		if err := writeMetrics(suite, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if suite.EventTrace != nil {
		if err := suite.EventTrace.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := eventsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote event trace to %s\n", *eventsOut)
	}
	if *cacheStats && suite.Cache != nil {
		fmt.Fprintf(os.Stderr, "cache %s: %s\n", suite.Cache.Dir(), suite.Cache.Stats())
	}
}

// writeMetrics dumps each run's end-of-run registry snapshot as one JSONL
// record labeled with the run's workload and design, in sorted key order
// so the output is deterministic.
func writeMetrics(suite *experiments.Suite, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	keys := make([]string, 0, suite.RunCount())
	for k := range suite.Results() {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	n := 0
	for _, k := range keys {
		wl, design, _ := strings.Cut(k, "\x00")
		snap, ok := suite.Metrics(wl, design)
		if !ok {
			continue
		}
		b = append(b[:0], fmt.Sprintf(`{"workload":%q,"design":%q,"snapshot":`, wl, design)...)
		b = snap.AppendJSON(b)
		b = append(b, "}\n"...)
		if _, err := f.Write(b); err != nil {
			f.Close()
			return err
		}
		n++
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d metrics snapshots to %s\n", n, path)
	return nil
}
