// Package prof wires the standard pprof and runtime/trace collectors to
// command-line flags shared by the simulator binaries. Importing the
// package registers -cpuprofile, -memprofile and -trace on the default
// flag set; Start begins whatever the user asked for.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

var (
	cpuOut   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memOut   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut = flag.String("trace", "", "write a runtime execution trace to this file")
)

// Start begins the collections requested via flags (flag.Parse must have
// run). The returned stop function flushes and closes them and must run
// before the process exits for the files to be complete.
func Start() (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		if *memOut == "" {
			return
		}
		f, err := os.Create(*memOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // settle the heap so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
	}, nil
}
