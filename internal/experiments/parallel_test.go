package experiments

import (
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"

	"vcache/internal/core"
	"vcache/internal/workloads"
)

func testParams() workloads.Params {
	return workloads.Params{Scale: 1, NumCUs: 4, WarpsPerCU: 2, Seed: 3}
}

// A suite built over a subset must reject workloads outside it — before
// this was enforced, Trace silently built traces for any catalog workload
// — and must return errors, not panic, for unknown names.
func TestTraceSubsetMembership(t *testing.T) {
	s, err := New(testParams(), []string{"fw_block"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Trace("pagerank"); err == nil {
		t.Fatal("workload outside the suite's subset accepted")
	}
	if _, err := s.Trace("bogus"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	tr, err := s.Trace("fw_block")
	if err != nil || tr == nil {
		t.Fatalf("suite workload rejected: %v", err)
	}
}

func TestRunAllRejectsUnknownWorkload(t *testing.T) {
	s, err := New(testParams(), []string{"fw_block"})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []RunRequest{
		{Workload: "fw_block", Config: core.DesignIdeal()},
		{Workload: "kmeans", Config: core.DesignIdeal()},
	}
	if err := s.RunAll(reqs); err == nil {
		t.Fatal("RunAll accepted a workload outside the suite")
	}
	if n := s.RunCount(); n != 0 {
		t.Fatalf("simulations ran despite the error: %d", n)
	}
}

// Determinism: a parallel suite (8 workers) and a serial one (1 worker)
// must produce identical core.Results for every memo key, and identical
// rendered figure text.
func TestParallelMatchesSerial(t *testing.T) {
	ids := append(Figures(), Extras()...)
	build := func(workers int) (*Suite, map[string]core.Results) {
		s, err := New(testParams(), []string{"fw_block", "kmeans"})
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = workers
		if err := s.Precompute(ids...); err != nil {
			t.Fatal(err)
		}
		return s, s.Results()
	}
	serialSuite, serial := build(1)
	parallelSuite, parallel := build(8)
	if len(serial) == 0 {
		t.Fatal("no runs executed")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for k, sr := range serial {
		pr, ok := parallel[k]
		if !ok {
			t.Fatalf("parallel suite missing %q", k)
		}
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("results differ for %q", strings.ReplaceAll(k, "\x00", "/"))
		}
	}
	if serialSuite.RenderAll() != parallelSuite.RenderAll() {
		t.Fatal("rendered output differs between serial and parallel execution")
	}
}

// Intra-run determinism at the suite level: a suite whose every
// simulation runs on 4 partitioned-engine workers must produce identical
// core.Results, identical rendered figure text and an identical CSV dump
// to one running each simulation single-threaded. (Worker counts clamp to
// GOMAXPROCS, so on a single-core machine this degenerates to comparing
// two serial canonical schedules — still a meaningful guard on the
// shared RunAll/WithIntraParallelism plumbing.)
func TestIntraParallelMatchesSerial(t *testing.T) {
	ids := append(Figures(), Extras()...)
	build := func(intra int) (*Suite, map[string]core.Results, string) {
		s, err := New(testParams(), []string{"fw_block", "kmeans"})
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = 1
		s.IntraWorkers = intra
		if err := s.Precompute(ids...); err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		if err := s.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return s, s.Results(), csv.String()
	}
	serialSuite, serial, serialCSV := build(1)
	intraSuite, intra, intraCSV := build(4)
	if len(serial) == 0 {
		t.Fatal("no runs executed")
	}
	for k, sr := range serial {
		ir, ok := intra[k]
		if !ok {
			t.Fatalf("intra-parallel suite missing %q", k)
		}
		if !reflect.DeepEqual(sr, ir) {
			t.Errorf("results differ for %q", strings.ReplaceAll(k, "\x00", "/"))
		}
	}
	if serialSuite.RenderAll() != intraSuite.RenderAll() {
		t.Fatal("rendered output differs between intra worker counts")
	}
	if serialCSV != intraCSV {
		t.Fatal("CSV dump differs between intra worker counts")
	}
}

// Race safety: many goroutines hammer Run with overlapping keys (run
// under -race). Every caller must observe the identical memoized result,
// each key must simulate exactly once, and progress lines must stay
// unfragmented.
func TestRunConcurrentHammer(t *testing.T) {
	s, err := New(testParams(), []string{"fw_block", "kmeans"})
	if err != nil {
		t.Fatal(err)
	}
	var progress strings.Builder
	s.Progress = ProgressWriter(&progress)

	wls := []string{"fw_block", "kmeans"}
	cfgs := []core.Config{
		core.DesignIdeal(), baseline512Probed(),
		core.DesignBaseline16K(), core.DesignVCOpt(),
	}
	type pair struct {
		wl  string
		cfg core.Config
	}
	var pairs []pair
	for _, wl := range wls {
		for _, cfg := range cfgs {
			pairs = append(pairs, pair{wl, cfg})
		}
	}

	const goroutines = 16
	seen := make([]map[string]core.Results, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make(map[string]core.Results, len(pairs))
			for i := range pairs {
				p := pairs[(i+g)%len(pairs)] // vary claim order across goroutines
				out[p.wl+"\x00"+p.cfg.Name] = s.Run(p.wl, p.cfg)
			}
			// Concurrent snapshots must also be safe.
			if err := s.WriteCSV(io.Discard); err != nil {
				t.Error(err)
			}
			seen[g] = out
		}(g)
	}
	wg.Wait()

	if n := s.RunCount(); n != len(pairs) {
		t.Fatalf("singleflight failed: %d runs for %d keys", n, len(pairs))
	}
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(seen[0], seen[g]) {
			t.Fatalf("goroutine %d observed different results", g)
		}
	}
	lines := strings.Split(strings.TrimSuffix(progress.String(), "\n"), "\n")
	if len(lines) != len(pairs) {
		t.Fatalf("progress lines = %d, want %d", len(lines), len(pairs))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "  ran ") || !strings.HasSuffix(l, ")") {
			t.Fatalf("fragmented progress line: %q", l)
		}
	}
}

// Every figure's plan must cover every run its render method performs:
// after Precompute(id), rendering id must simulate nothing new.
func TestPlansCoverFigures(t *testing.T) {
	for _, id := range append(Figures(), Extras()...) {
		s, err := New(testParams(), []string{"fw_block", "kmeans"})
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = 4
		if err := s.Precompute(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		n := s.RunCount()
		if _, err := s.Render(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := s.RunCount(); got != n {
			t.Errorf("figure %s: plan incomplete, render added %d runs", id, got-n)
		}
	}
}

func TestForEachLimit(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var mu sync.Mutex
		ran := make(map[int]int)
		err := forEachLimit(50, workers, func(i int) error {
			mu.Lock()
			ran[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ran) != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, len(ran))
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}
