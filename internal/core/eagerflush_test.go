package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"vcache/internal/memory"
	"vcache/internal/obs"
	"vcache/internal/workloads"
)

// eagerFlushParams keeps the all-workloads sweep cheap: every generator
// still runs end to end, just on a small machine.
func eagerFlushParams() workloads.Params {
	return workloads.Params{Scale: 1, NumCUs: 4, WarpsPerCU: 2, Seed: 42}
}

// TestEagerFlushParityAllWorkloads is the acceptance gate for the epoch
// invalidation scheme: with Config.EagerFlush toggled and nothing else,
// every workload must produce byte-identical encoded Results and an
// identical final metrics snapshot. The lazy path is an accounting trick,
// not a model change — SimVersion stays put because this holds.
func TestEagerFlushParityAllWorkloads(t *testing.T) {
	p := eagerFlushParams()
	for _, g := range workloads.All() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			t.Parallel()
			tr := g.Build(p)
			run := func(eager bool) ([]byte, obs.Snapshot) {
				cfg := DesignVCOpt()
				cfg.GPU.NumCUs = p.NumCUs
				cfg.EagerFlush = eager
				sys := MustNew(cfg)
				var last obs.Snapshot
				res, err := sys.RunContext(context.Background(), tr,
					WithMetricsSnapshot(func(s obs.Snapshot) { last = s }))
				if err != nil {
					t.Fatalf("RunContext(eager=%v): %v", eager, err)
				}
				return EncodeResults(res), last
			}
			lazyBytes, lazySnap := run(false)
			eagerBytes, eagerSnap := run(true)
			if !bytes.Equal(lazyBytes, eagerBytes) {
				t.Errorf("encoded Results differ between lazy and eager flush\nlazy:  %s\neager: %s",
					lazyBytes, eagerBytes)
			}
			if !reflect.DeepEqual(lazySnap, eagerSnap) {
				t.Errorf("final metrics snapshot differs between lazy and eager flush")
			}
		})
	}
}

// TestEagerFlushParityMultiASID drives a multi-tenant churn plan through
// ONE System per mode — so FlushGPU, RetireASID, and context switches fire
// on structures still warm from the previous tenant — and requires parity
// of every launch's encoded Results, every RetireStats, and the final
// snapshot, at intra-parallelism 1 and 4 and across the three designs the
// churn figure runs.
func TestEagerFlushParityMultiASID(t *testing.T) {
	p := workloads.ChurnParams{
		Tenants: 6, Launches: 12, ASIDSlots: 3,
		KernelPages: 16, SharedPages: 4,
		NumCUs: 4, WarpsPerCU: 2, Seed: 42, ArrivalPeriod: 1,
	}.Normalized()
	pl := workloads.BuildChurnPlan(p)

	type launchOut struct {
		res    []byte
		retire RetireStats
	}
	churnRun := func(t *testing.T, cfg Config, workers int) ([]launchOut, obs.Snapshot) {
		t.Helper()
		cfg.GPU.NumCUs = p.NumCUs
		sys := MustNew(cfg)
		var outs []launchOut
		var last obs.Snapshot
		for _, l := range pl.Launches {
			var o launchOut
			if l.Retire != 0 {
				o.retire = sys.RetireASID(l.Retire)
			}
			res, err := sys.RunContext(context.Background(), pl.KernelTrace(l),
				WithIntraParallelism(workers),
				WithMetricsSnapshot(func(s obs.Snapshot) { last = s }))
			if err != nil {
				t.Fatalf("launch %d (asid %d): %v", l.Seq, l.ASID, err)
			}
			o.res = EncodeResults(res)
			outs = append(outs, o)
		}
		return outs, last
	}

	designs := []struct {
		name string
		cfg  Config
	}{
		{"vc-opt", DesignVCOpt()},
		{"baseline-512", DesignBaseline512()},
		{"vc-opt-dsr", DesignVCOptDSR()},
	}
	for _, d := range designs {
		d := d
		for _, workers := range []int{1, 4} {
			workers := workers
			t.Run(d.name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				lazyCfg, eagerCfg := d.cfg, d.cfg
				eagerCfg.EagerFlush = true
				lazy, lazySnap := churnRun(t, lazyCfg, workers)
				eager, eagerSnap := churnRun(t, eagerCfg, workers)
				for i := range lazy {
					if lazy[i].retire != eager[i].retire {
						t.Errorf("launch %d: RetireStats diverge: lazy %+v eager %+v",
							i, lazy[i].retire, eager[i].retire)
					}
					if !bytes.Equal(lazy[i].res, eager[i].res) {
						t.Errorf("launch %d: encoded Results diverge\nlazy:  %s\neager: %s",
							i, lazy[i].res, eager[i].res)
					}
				}
				if !reflect.DeepEqual(lazySnap, eagerSnap) {
					t.Errorf("final metrics snapshot differs between lazy and eager flush")
				}
			})
		}
	}
	// The plan must actually exercise retirement, or the RetireStats
	// comparisons above are vacuous.
	retires := 0
	for _, l := range pl.Launches {
		if l.Retire != memory.ASID(0) {
			retires++
		}
	}
	if retires == 0 {
		t.Fatal("churn plan produced no retirements; grow Tenants or Launches")
	}
}
